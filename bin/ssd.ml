(* Command-line front end:

     ssd characterize [--fine]              # dump the cell library
     ssd sta FILE.bench [--model NAME] [--clock NS]
     ssd atpg FILE.bench [--faults N] [--no-itr] [--budget N]
     ssd eco FILE.bench SCRIPT [--model NAME] [--check]
     ssd gen --gates N [--inputs N] [--outputs N] [--seed N] -o FILE.bench
     ssd delay --skew PS [--tx NS] [--ty NS]  # query all models on a NAND2
     ssd corners FILE.bench [--corners K] [--check]
     ssd mc FILE.bench [--samples N] [--seed N]

   The worker subcommands (sta, atpg, gen, eco) share one common option
   block — --jobs / --stats / --trace with identical semantics — parsed
   by [common_t] below. *)

module S = Ssd_spice
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Corners = Ssd_cell.Corners
module Fit = Ssd_cell.Fit
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module Engine = Ssd_sta.Engine
module Corner_sta = Ssd_sta.Corner_sta
module Run_opts = Ssd_sta.Run_opts
module A = Ssd_atpg
module Interval = Ssd_util.Interval
module Texttab = Ssd_util.Texttab
module Obs = Ssd_obs.Obs

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let fine_t =
  Arg.(value & flag & info [ "fine" ]
         ~doc:"Use the fine characterization profile (default: honour \
               \\$SSD_FAST, else fine).")

let library_of fine =
  if fine then Charlib.default ~profile:Charlib.fine ()
  else Charlib.default ()

let model_t =
  let parse s =
    match DM.find s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown model %S (try: %s)" s
             (String.concat ", " (List.map (fun m -> m.DM.name) DM.all))))
  in
  let print ppf m = Format.pp_print_string ppf m.DM.name in
  let model_conv = Arg.conv (parse, print) in
  Arg.(value & opt model_conv DM.proposed
       & info [ "model" ] ~docv:"NAME"
           ~doc:"Delay model: proposed, pin-to-pin, jun or nabavi.")

let bench_file_t =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE.bench" ~doc:"ISCAS85-format netlist, or a suite \
                                          name (c17, c880s, ...).")

let jobs_t =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
       ~doc:"Execution lanes for the timing analysis and the fault \
             simulator: 1 is sequential, 0 picks the recommended domain \
             count, N>1 uses N domains. Results are identical for any \
             value.")

let stats_t =
  Arg.(value & flag & info [ "stats" ]
       ~doc:"Print a telemetry summary after the run: counters, per-phase \
             timers and histograms (lane utilization, per-level times, \
             screening economics, ...).")

let trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run's spans \
                 (load in Perfetto or chrome://tracing); one track per \
                 execution lane.")

let stats_json_t =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the full telemetry snapshot as JSON: counters, \
                 gauges, timers (total and self seconds), histogram rows \
                 and the hierarchical span tree with per-span GC \
                 allocation deltas.  This is the /stats payload shape.")

let metrics_t =
  Arg.(value & flag & info [ "metrics" ]
       ~doc:"Print the telemetry snapshot in Prometheus text exposition \
             format after the run.")

(* one sink per invocation: enabled only when the user asked for output,
   so the default path keeps the no-op sink's near-zero overhead.  A
   snapshot request turns span recording on too — the span tree (and its
   GC attribution) is part of the snapshot. *)
let make_obs ~stats ~trace ~stats_json ~metrics =
  let tracing = trace <> None || stats_json <> None in
  if stats || metrics || tracing then Obs.create ~trace:tracing ()
  else Obs.disabled

let emit_obs obs ~stats ~trace ~stats_json ~metrics =
  (match trace with
  | Some path ->
    Obs.write_trace obs path;
    Printf.printf "wrote trace to %s\n" path
  | None -> ());
  (match stats_json with
  | Some path ->
    Obs.write_snapshot obs path;
    Printf.printf "wrote stats to %s\n" path
  | None -> ());
  if metrics then print_string (Obs.to_prometheus (Obs.snapshot obs));
  if stats then print_string (Obs.report obs)

(* The common option block every worker subcommand shares.  Parsed once
   here so --jobs / --stats / --trace / --stats-json / --metrics keep
   identical names, docs and semantics across sta, atpg, gen and eco. *)
type common = {
  co_verbose : bool;
  co_jobs : int;
  co_stats : bool;
  co_trace : string option;
  co_stats_json : string option;
  co_metrics : bool;
}

let common_t =
  let mk co_verbose co_jobs co_stats co_trace co_stats_json co_metrics =
    { co_verbose; co_jobs; co_stats; co_trace; co_stats_json; co_metrics }
  in
  Term.(const mk $ verbose_t $ jobs_t $ stats_t $ trace_t $ stats_json_t
        $ metrics_t)

let setup_common c =
  setup_logs c.co_verbose;
  make_obs ~stats:c.co_stats ~trace:c.co_trace ~stats_json:c.co_stats_json
    ~metrics:c.co_metrics

let finish_common c obs =
  emit_obs obs ~stats:c.co_stats ~trace:c.co_trace
    ~stats_json:c.co_stats_json ~metrics:c.co_metrics

let run_opts_of ?(cache = false) c obs =
  Run_opts.make ~jobs:c.co_jobs ~cache ~obs ()

let load_netlist path =
  match Ck.Benchmarks.by_name path with
  | Some nl -> nl
  | None ->
    if Sys.file_exists path then
      try Ck.Bench_io.parse_file path
      with Ck.Bench_io.Parse_error { line; message } ->
        Printf.eprintf "ssd: %s:%d: %s\n" path line message;
        exit 2
    else begin
      Printf.eprintf
        "ssd: %S is neither a suite name (%s) nor an existing file\n" path
        (String.concat ", " Ck.Benchmarks.names);
      exit 2
    end

(* ---- characterize ---- *)

let characterize_cmd =
  let run verbose fine =
    setup_logs verbose;
    let lib = library_of fine in
    List.iter
      (fun cell ->
        Format.printf "%a@." Charlib.pp_cell_summary cell;
        let kname =
          match cell.Charlib.kind with Sweep.Nand -> "NAND" | Sweep.Nor -> "NOR"
        in
        Array.iteri
          (fun pos ec ->
            let k = ec.Charlib.delay.Fit.k in
            Printf.printf
              "  %s%d pin %d to-ctl: DR(T) = %.3e T^2 + %.3e T + %.3e  \
               (rms %.1f ps%s)\n"
              kname cell.Charlib.n pos k.(0) k.(1) k.(2)
              (ec.Charlib.delay.Fit.rms *. 1e12)
              (match ec.Charlib.delay.Fit.peak with
              | Some p -> Printf.sprintf ", peak at %.2f ns" (p *. 1e9)
              | None -> ""))
          cell.Charlib.to_ctl)
      (lib.Charlib.cells);
    0
  in
  Cmd.v (Cmd.info "characterize" ~doc:"Build and print the cell library")
    Term.(const run $ verbose_t $ fine_t)

(* ---- sta ---- *)

let sta_cmd =
  let clock_t =
    Arg.(value & opt (some float) None
         & info [ "clock" ] ~docv:"NS" ~doc:"Clock period in ns for the \
                                             required-time check.")
  in
  let cache_t =
    Arg.(value & flag & info [ "cache" ]
         ~doc:"Memoize the per-cell corner searches across gate instances \
               (never changes results). Implied by $(b,--stats) so the \
               eval-cache hit ratio row is populated.")
  in
  let run common fine model file clock cache =
    let obs = setup_common common in
    let lib = library_of fine in
    let nl = Ck.Decompose.to_primitive (load_netlist file) in
    let cache = cache || common.co_stats in
    let t = Sta.analyze_with (run_opts_of ~cache common obs) ~library:lib ~model nl in
    print_endline (Sta.summary t);
    let table = Texttab.create ~header:[ "PO"; "rise A (ns)"; "fall A (ns)" ] in
    List.iter
      (fun po ->
        let lt = Sta.timing t po in
        Texttab.add_row table
          [
            Ck.Netlist.signal_name nl po;
            Interval.to_string
              (Interval.make
                 (Interval.lo lt.Sta.rise.Types.w_arr *. 1e9)
                 (Interval.hi lt.Sta.rise.Types.w_arr *. 1e9));
            Interval.to_string
              (Interval.make
                 (Interval.lo lt.Sta.fall.Types.w_arr *. 1e9)
                 (Interval.hi lt.Sta.fall.Types.w_arr *. 1e9));
          ])
      (Ck.Netlist.outputs nl);
    Texttab.print table;
    (match clock with
    | None -> ()
    | Some ns ->
      let q = Sta.compute_required t ~clock_period:(ns *. 1e-9) in
      let v = Sta.violations t q in
      Printf.printf "%d timing violation(s) at clock %.3f ns\n" (List.length v) ns;
      List.iter (fun (_, msg) -> Printf.printf "  %s\n" msg) v);
    finish_common common obs;
    if common.co_stats then
      Option.iter
        (fun s -> print_endline (Ssd_core.Eval_cache.to_string s))
        (Sta.cache_stats t);
    0
  in
  Cmd.v (Cmd.info "sta" ~doc:"Static timing analysis of a netlist")
    Term.(const run $ common_t $ fine_t $ model_t $ bench_file_t
          $ clock_t $ cache_t)

(* ---- atpg ---- *)

let atpg_cmd =
  let faults_t =
    Arg.(value & opt int 16 & info [ "faults" ] ~docv:"N"
           ~doc:"Number of crosstalk fault sites to target.")
  in
  let no_itr_t =
    Arg.(value & flag & info [ "no-itr" ] ~doc:"Disable incremental timing \
                                                refinement pruning.")
  in
  let budget_t =
    Arg.(value & opt int 1000 & info [ "budget" ] ~docv:"N"
           ~doc:"Search budget in decision-node expansions per fault.")
  in
  let seed_t =
    Arg.(value & opt int 99 & info [ "seed" ] ~docv:"N" ~doc:"Extraction seed.")
  in
  let run common fine model file faults no_itr budget seed =
    let obs = setup_common common in
    let lib = library_of fine in
    let nl = Ck.Decompose.to_primitive (load_netlist file) in
    let opts = run_opts_of common obs in
    let sta = Sta.analyze_with opts ~library:lib ~model nl in
    let sites =
      A.Fault.extract_screened ~count:faults ~seed:(Int64.of_int seed)
        ~library:lib ~model nl
    in
    Printf.printf "%s: %d fault sites, clock %.3f ns, ITR %s\n%!"
      (Ck.Netlist.name nl) (List.length sites)
      (Sta.max_delay sta *. 1e9)
      (if no_itr then "off" else "on");
    let cfg =
      { (A.Atpg.default_config ~clock_period:(Sta.max_delay sta)) with
        A.Atpg.use_itr = not no_itr; max_expansions = budget }
    in
    let results, run_stats = A.Atpg.run_with opts cfg ~library:lib ~model nl sites in
    List.iter
      (fun r ->
        Printf.printf "  %-50s %s (%d expansions)\n"
          (A.Fault.describe nl r.A.Atpg.site)
          (match r.A.Atpg.outcome with
          | A.Atpg.Detected _ -> "DETECTED"
          | A.Atpg.Undetectable -> "undetectable"
          | A.Atpg.Aborted -> "aborted")
          r.A.Atpg.expansions)
      results;
    Printf.printf
      "detected %d, undetectable %d, aborted %d -> efficiency %.2f%%\n"
      run_stats.A.Atpg.detected run_stats.A.Atpg.undetectable
      run_stats.A.Atpg.aborted
      (A.Atpg.efficiency run_stats);
    (* fault-simulate the generated test set over the whole fault list:
       [--jobs] threads through to the incremental fault simulator *)
    let tests =
      List.filter_map
        (fun r ->
          match r.A.Atpg.outcome with
          | A.Atpg.Detected v -> Some v
          | A.Atpg.Undetectable | A.Atpg.Aborted -> None)
        results
    in
    (match tests with
    | [] -> ()
    | _ ->
      let fs =
        A.Fault_sim.simulate_with opts ~library:lib ~model
          ~clock_period:(Sta.max_delay sta) nl sites tests
      in
      Printf.printf
        "fault simulation of the %d generated test(s): %d/%d sites \
         detected, coverage %.2f%%\n"
        (List.length tests)
        (List.length fs.A.Fault_sim.detected)
        (List.length sites) fs.A.Fault_sim.coverage);
    finish_common common obs;
    0
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Crosstalk delay-fault test generation")
    Term.(const run $ common_t $ fine_t $ model_t $ bench_file_t $ faults_t
          $ no_itr_t $ budget_t $ seed_t)

(* ---- eco ---- *)

(* Edit-script interpreter for the incremental {!Ssd_sta.Engine}: one
   directive per line, '#' starts a comment.  Times are written in the
   units engineers use (ps for coupling deltas, ns for PI windows):

     extra <signal> <ps>                            extra delay on a line
     swap <signal> <nand|nor|not>                   re-type a gate
     pi <signal> <arr_lo> <arr_hi> <tt_lo> <tt_hi>  PI spec, all in ns
     model <name>                                   retarget the delay model
     checkpoint                                     push a history mark
     revert                                         undo to the last mark
     commit                                         drop undo history *)
let eco_cmd =
  let script_t =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"SCRIPT"
             ~doc:"Edit script: one directive per line — $(b,extra SIG PS), \
                   $(b,swap SIG KIND), $(b,pi SIG ALO AHI TLO THI) (ns), \
                   $(b,model NAME), $(b,checkpoint), $(b,revert), \
                   $(b,commit); '#' starts a comment.")
  in
  let check_t =
    Arg.(value & flag & info [ "check" ]
         ~doc:"After every edit, re-analyze the edited circuit from scratch \
               and verify the engine's PO window is bit-identical (exit 1 \
               on the first mismatch).")
  in
  let run common fine model file script check =
    let obs = setup_common common in
    let lib = library_of fine in
    let nl = Ck.Decompose.to_primitive (load_netlist file) in
    let opts = run_opts_of common obs in
    let fail ln fmt =
      Printf.ksprintf
        (fun msg ->
          Printf.eprintf "ssd: %s:%d: %s\n" script ln msg;
          exit 2)
        fmt
    in
    let lines =
      if not (Sys.file_exists script) then begin
        Printf.eprintf "ssd: script %S does not exist\n" script;
        exit 2
      end
      else begin
        let ic = open_in script in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go acc n =
              match input_line ic with
              | l -> go ((n, l) :: acc) (n + 1)
              | exception End_of_file -> List.rev acc
            in
            go [] 1)
      end
    in
    let resolve ln name =
      match Ck.Netlist.find nl name with
      | Some i -> i
      | None -> fail ln "unknown signal %S" name
    in
    let num ln s =
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail ln "not a number: %S" s
    in
    let eng = Engine.create ~opts ~library:lib ~model nl in
    let marks = ref [] in
    let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
    let nedits = ref 0 in
    let show ln what =
      let w = Engine.po_window eng in
      Printf.printf "%4d  %-30s ->  PO [%.3f, %.3f] ns\n" ln what
        (Interval.lo w *. 1e9) (Interval.hi w *. 1e9)
    in
    let apply ln what edit =
      (try Engine.apply eng edit with
      | Invalid_argument msg | Sta.Unsupported_gate msg -> fail ln "%s" msg);
      incr nedits;
      show ln what;
      if check then begin
        let reference = Engine.reanalyze eng in
        let we = Engine.po_window eng and wr = Sta.po_window reference in
        if
          not
            (beq (Interval.lo we) (Interval.lo wr)
            && beq (Interval.hi we) (Interval.hi wr))
        then begin
          Printf.eprintf
            "ssd: %s:%d: engine PO window [%.6f, %.6f] ns differs from full \
             re-analysis [%.6f, %.6f] ns\n"
            script ln
            (Interval.lo we *. 1e9) (Interval.hi we *. 1e9)
            (Interval.lo wr *. 1e9) (Interval.hi wr *. 1e9);
          exit 1
        end
      end
    in
    List.iter
      (fun (ln, raw) ->
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let toks =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        match toks with
        | [] -> ()
        | [ "extra"; sg; ps ] ->
          let delta_ps = num ln ps in
          apply ln
            (Printf.sprintf "extra %s %+g ps" sg delta_ps)
            (Engine.Set_extra_delay
               { line = resolve ln sg; delta = delta_ps *. 1e-12 })
        | [ "swap"; sg; kind ] ->
          let kind =
            match String.lowercase_ascii kind with
            | "nand" -> Ck.Gate.Nand
            | "nor" -> Ck.Gate.Nor
            | "not" -> Ck.Gate.Not
            | k -> fail ln "unknown gate kind %S (nand, nor or not)" k
          in
          apply ln
            (Printf.sprintf "swap %s %s" sg (Ck.Gate.to_string kind))
            (Engine.Swap_gate { node = resolve ln sg; kind })
        | [ "pi"; sg; alo; ahi; tlo; thi ] ->
          let iv lo hi =
            try Interval.make (num ln lo *. 1e-9) (num ln hi *. 1e-9)
            with Invalid_argument msg -> fail ln "%s" msg
          in
          apply ln
            (Printf.sprintf "pi %s [%s, %s] tt [%s, %s] ns" sg alo ahi tlo thi)
            (Engine.Set_pi_spec
               {
                 pi = resolve ln sg;
                 spec =
                   { Run_opts.pi_arrival = iv alo ahi; pi_tt = iv tlo thi };
               })
        | [ "model"; name ] -> (
          match DM.find name with
          | Some m -> apply ln ("model " ^ name) (Engine.Set_model m)
          | None ->
            fail ln "unknown model %S (try: %s)" name
              (String.concat ", " (List.map (fun m -> m.DM.name) DM.all)))
        | [ "checkpoint" ] ->
          marks := Engine.checkpoint eng :: !marks;
          Printf.printf "%4d  checkpoint (depth %d)\n" ln (Engine.depth eng)
        | [ "revert" ] -> (
          match !marks with
          | [] -> fail ln "revert without a preceding checkpoint"
          | cp :: rest ->
            Engine.revert eng cp;
            marks := rest;
            show ln "revert")
        | [ "commit" ] ->
          Engine.commit eng;
          marks := [];
          Printf.printf "%4d  commit\n" ln
        | cmd :: _ -> fail ln "unknown or malformed directive %S" cmd)
      lines;
    print_endline (Engine.summary eng);
    if check then
      Printf.printf "check: %d edit(s) bit-identical to full re-analysis\n"
        !nedits;
    Engine.close eng;
    finish_common common obs;
    0
  in
  Cmd.v
    (Cmd.info "eco"
       ~doc:"Replay an edit script through the incremental re-timing engine")
    Term.(const run $ common_t $ fine_t $ model_t $ bench_file_t $ script_t
          $ check_t)

(* ---- gen ---- *)

let gen_cmd =
  let gates_t =
    Arg.(required & opt (some int) None & info [ "gates" ] ~docv:"N"
           ~doc:"Gate count.")
  in
  let inputs_t =
    Arg.(value & opt int 16 & info [ "inputs" ] ~docv:"N" ~doc:"PI count.")
  in
  let outputs_t =
    Arg.(value & opt int 8 & info [ "outputs" ] ~docv:"N" ~doc:"PO count.")
  in
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let out_t =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the netlist here (default: stdout).")
  in
  (* generation is single-threaded; the common block is still accepted
     so --jobs/--stats/--trace mean the same thing on every subcommand *)
  let run common gates inputs outputs seed out =
    let obs = setup_common common in
    let nl =
      Ck.Generator.generate ~obs
        {
          Ck.Generator.default_params with
          Ck.Generator.g_name = "synth";
          n_inputs = inputs;
          n_outputs = outputs;
          n_gates = gates;
          seed = Int64.of_int seed;
        }
    in
    (match out with
    | Some path ->
      Ck.Bench_io.write_file nl path;
      Printf.printf "wrote %s (%s)\n" path (Ck.Netlist.stats nl)
    | None -> print_string (Ck.Bench_io.to_string nl));
    finish_common common obs;
    0
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic benchmark netlist")
    Term.(const run $ common_t $ gates_t $ inputs_t $ outputs_t $ seed_t
          $ out_t)

(* ---- corners ---- *)

let corners_cmd =
  let k_t =
    Arg.(value & opt int 4 & info [ "corners" ] ~docv:"K"
           ~doc:"Number of process corners to spread across the derating \
                 range (delay ±25%, transition ∓10%).")
  in
  let check_t =
    Arg.(value & flag & info [ "check" ]
         ~doc:"Re-run every corner as an independent single-corner analysis \
               over its derated library and verify the batched plane is \
               bit-identical (exit 1 on the first mismatch).")
  in
  let run common fine file k check =
    let obs = setup_common common in
    if k < 2 then begin
      Printf.eprintf "ssd: --corners must be at least 2\n";
      exit 2
    end;
    let lib = library_of fine in
    let nl = Ck.Decompose.to_primitive (load_netlist file) in
    let table = Corners.build ~specs:(Corners.default_specs k) lib in
    let opts = Run_opts.make ~jobs:common.co_jobs ~obs ~corners:k () in
    let t = Corner_sta.analyze ~opts ~table nl in
    print_endline (Corner_sta.summary t);
    if check then begin
      for c = 0 to k - 1 do
        let scalar =
          Sta.analyze_with (Run_opts.make ())
            ~library:(Corners.library table c) ~model:DM.proposed nl
        in
        if not (Corner_sta.plane_matches t ~corner:c scalar) then begin
          Printf.eprintf
            "ssd: corner %d plane differs from its scalar analysis\n" c;
          exit 1
        end
      done;
      Printf.printf
        "check: %d corner plane(s) bit-identical to independent analyses\n" k
    end;
    finish_common common obs;
    0
  in
  Cmd.v
    (Cmd.info "corners"
       ~doc:"Batched multi-corner timing analysis (one sweep, K planes)")
    Term.(const run $ common_t $ fine_t $ bench_file_t $ k_t $ check_t)

(* ---- mc ---- *)

let mc_cmd =
  let samples_t =
    Arg.(value & opt int 64 & info [ "samples" ] ~docv:"N"
           ~doc:"Number of Monte-Carlo corner samples.")
  in
  let seed_t =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Sampling seed.")
  in
  let batch_t =
    Arg.(value & opt int 16 & info [ "batch" ] ~docv:"K"
           ~doc:"Samples fitted and swept together per batched-kernel pass \
                 (clamped to the sample count; never changes results).")
  in
  let check_t =
    Arg.(value & flag & info [ "check" ]
         ~doc:"Replay the sweep through the scalar resident-engine path and \
               verify every per-sample PO delay and circuit max is \
               bit-identical (exit 1 on the first mismatch).")
  in
  let run common fine file samples seed batch check =
    let obs = setup_common common in
    if samples < 1 then begin
      Printf.eprintf "ssd: --samples must be at least 1\n";
      exit 2
    end;
    if batch < 1 then begin
      Printf.eprintf "ssd: --batch must be at least 1\n";
      exit 2
    end;
    let lib = library_of fine in
    let nl = Ck.Decompose.to_primitive (load_netlist file) in
    let opts = Run_opts.make ~jobs:common.co_jobs ~obs ~mc_batch:batch () in
    let res =
      Corner_sta.monte_carlo ~opts ~samples ~seed:(Int64.of_int seed)
        ~library:lib nl
    in
    if check then begin
      (* scalar oracle: the eval cache pays off there, every sample
         revisits the same cells through the resident engine session *)
      let oracle =
        Corner_sta.monte_carlo_scalar
          ~opts:(run_opts_of ~cache:true common obs)
          ~samples ~seed:(Int64.of_int seed) ~library:lib nl
      in
      let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
      let fail fmt = Printf.ksprintf (fun m ->
          Printf.eprintf "ssd: %s\n" m; exit 1) fmt
      in
      Array.iteri
        (fun pi d ->
          Array.iteri
            (fun s v ->
              if not (beq v oracle.Corner_sta.mc_delays.(pi).(s)) then
                fail "PO %d sample %d: batched %.17g <> scalar %.17g"
                  res.Corner_sta.mc_pos.(pi) s v
                  oracle.Corner_sta.mc_delays.(pi).(s))
            d)
        res.Corner_sta.mc_delays;
      Array.iteri
        (fun s v ->
          if not (beq v oracle.Corner_sta.mc_max.(s)) then
            fail "sample %d circuit max: batched %.17g <> scalar %.17g" s v
              oracle.Corner_sta.mc_max.(s))
        res.Corner_sta.mc_max;
      Printf.printf
        "check: %d sample(s) bit-identical to the scalar engine path\n" samples
    end;
    let qs = [ 0.; 0.05; 0.5; 0.95; 1. ] in
    Printf.printf "%s: %d Monte-Carlo corner samples (seed %d)\n"
      (Ck.Netlist.stats nl) samples seed;
    let table =
      Texttab.create
        ~header:[ "PO"; "min (ns)"; "q5"; "median"; "q95"; "max (ns)" ]
    in
    let per_po = Corner_sta.mc_po_quantiles res qs in
    Array.iteri
      (fun pi po ->
        Texttab.add_row table
          (Ck.Netlist.signal_name nl po
          :: List.map
               (fun (_, v) -> Printf.sprintf "%.3f" (v *. 1e9))
               per_po.(pi)))
      res.Corner_sta.mc_pos;
    Texttab.print table;
    print_string "circuit max delay: ";
    List.iter
      (fun (q, v) -> Printf.printf " q%02.0f %.3f ns" (q *. 100.) (v *. 1e9))
      (Corner_sta.mc_max_quantiles res qs);
    print_newline ();
    finish_common common obs;
    0
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Monte-Carlo corner sampling through the batched corner kernel")
    Term.(const run $ common_t $ fine_t $ bench_file_t $ samples_t $ seed_t
          $ batch_t $ check_t)

(* ---- delay ---- *)

let delay_cmd =
  let skew_t =
    Arg.(value & opt float 0. & info [ "skew" ] ~docv:"PS"
           ~doc:"Skew A_Y − A_X in picoseconds.")
  in
  let tx_t =
    Arg.(value & opt float 0.5 & info [ "tx" ] ~docv:"NS"
           ~doc:"Transition time of input X in ns.")
  in
  let ty_t =
    Arg.(value & opt float 0.5 & info [ "ty" ] ~docv:"NS"
           ~doc:"Transition time of input Y in ns.")
  in
  let run verbose fine skew_ps tx_ns ty_ns =
    setup_logs verbose;
    let lib = library_of fine in
    let cell = Charlib.find lib Sweep.Nand 2 in
    let a = { Types.pos = 0; arrival = 0.; t_tr = tx_ns *. 1e-9 } in
    let b = { Types.pos = 1; arrival = skew_ps *. 1e-12; t_tr = ty_ns *. 1e-9 } in
    let sim =
      Sweep.pair S.Tech.default Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0 ~pos_b:1
        ~t_a:a.Types.t_tr ~t_b:b.Types.t_tr ~skew:b.Types.arrival
    in
    let t = Texttab.create ~header:[ "source"; "delay (ps)"; "out tt (ps)" ] in
    Texttab.add_row_f ~prec:1 t "simulator"
      [ sim.Sweep.m_delay *. 1e12; sim.Sweep.m_out_tt *. 1e12 ];
    List.iter
      (fun m ->
        Texttab.add_row_f ~prec:1 t m.DM.name
          [
            m.DM.pair_delay cell ~fanout:1 ~a ~b *. 1e12;
            m.DM.pair_out_tt cell ~fanout:1 ~a ~b *. 1e12;
          ])
      DM.all;
    Texttab.print t;
    0
  in
  Cmd.v
    (Cmd.info "delay"
       ~doc:"Query the simultaneous-switching delay of a NAND2 for every model")
    Term.(const run $ verbose_t $ fine_t $ skew_t $ tx_t $ ty_t)

let () =
  let doc = "simultaneous-switching gate delay model toolkit (DAC 2001 repro)" in
  let info = Cmd.info "ssd" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
                     [ characterize_cmd; sta_cmd; atpg_cmd; eco_cmd; gen_cmd; delay_cmd;
                       corners_cmd; mc_cmd ]))
