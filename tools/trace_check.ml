(* Validate a Chrome trace-event JSON file produced by `ssd ... --trace`:
   the document must parse, every complete ("X") event needs a
   non-negative duration and a monotone start time within its track, and
   the span hierarchy carried in args (id / parent) must form a forest —
   every non-root parent id resolves to a recorded span.

     dune exec tools/trace_check.exe -- trace.json

   Exits 0 when the trace is well-formed, 1 with a diagnostic when not,
   2 on usage errors.  Used by tools/verify.sh. *)

module Json = Ssd_util.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace_check: " ^ s); exit 1) fmt

let num field ev =
  match Json.member field ev with
  | Some j -> (
    match Json.number_value j with
    | Some v -> v
    | None -> fail "event field %S is not a number" field)
  | None -> fail "event lacks field %S" field

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
      prerr_endline "usage: trace_check FILE";
      exit 2
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc =
    match Json.parse contents with
    | Ok d -> d
    | Error msg -> fail "%s does not parse as JSON: %s" path msg
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> fail "%s has no traceEvents array" path
  in
  let xs =
    List.filter
      (fun ev -> Json.member "ph" ev = Some (Json.Str "X"))
      events
  in
  if xs = [] then fail "%s records no complete (ph:X) events" path;
  let last_ts = Hashtbl.create 8 in
  let ids = Hashtbl.create 64 in
  let parents = ref [] in
  List.iter
    (fun ev ->
      let ts = num "ts" ev and dur = num "dur" ev in
      let tid = int_of_float (num "tid" ev) in
      if dur < 0. then fail "negative duration %g us on track %d" dur tid;
      (match Hashtbl.find_opt last_ts tid with
      | Some prev when ts < prev ->
        fail "track %d time goes backwards: %g us after %g us" tid ts prev
      | _ -> ());
      Hashtbl.replace last_ts tid ts;
      match Json.member "args" ev with
      | Some args ->
        let id = int_of_float (num "id" args) in
        let parent = int_of_float (num "parent" args) in
        let self = num "self_us" args in
        if self < -1e-9 then fail "span %d has negative self time" id;
        if self > dur +. 1e-6 then
          fail "span %d self time %g us exceeds duration %g us" id self dur;
        if Hashtbl.mem ids id then fail "duplicate span id %d" id;
        Hashtbl.replace ids id ();
        if parent >= 0 then parents := (id, parent) :: !parents
      | None -> fail "event on track %d lacks args" tid)
    xs;
  List.iter
    (fun (id, parent) ->
      if not (Hashtbl.mem ids parent) then
        fail "span %d names unknown parent %d" id parent)
    !parents;
  Printf.printf "trace_check: %s ok (%d spans, %d tracks)\n" path
    (List.length xs) (Hashtbl.length last_ts)
