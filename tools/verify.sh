#!/bin/sh
# Tier-1 verification: build everything, run the full test suite, then
# build the odoc documentation when an odoc binary is available (the CI
# image may not ship one; all libraries are private, so the private-doc
# alias is the one that renders their interfaces and surfaces odoc
# warnings).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

# Downsized scale run: the 100k-gate experiment shrunk to a few thousand
# gates — still asserts SoA/seed bit-identity across jobs and the cone
# footprint, and reports gates/sec + bytes/gate.
SSD_FAST=1 SSD_SCALE_GATES=5000 dune exec bench/main.exe -- scale

# Downsized corners run: the 40k-gate batched-corner experiment shrunk —
# still asserts per-plane bit-identity against K scalar analyses and the
# batched-speedup floor, and runs the 64-sample Monte-Carlo sweep.
SSD_FAST=1 SSD_CORNERS=4000 dune exec bench/main.exe -- corners

# Downsized Monte-Carlo run: 256 sampled corners through the chunked
# batched kernel vs the scalar resident-engine oracle — still asserts
# per-sample bit-identity, quantile identity and the one-core speedup
# floor.
SSD_MC=600 dune exec bench/main.exe -- mc

if command -v odoc >/dev/null 2>&1; then
  dune build @doc @doc-private
else
  echo "verify: odoc not installed; skipping dune build @doc" >&2
fi

echo "verify: ok"
