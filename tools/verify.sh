#!/bin/sh
# Tier-1 verification: build everything, run the full test suite, then
# build the odoc documentation when an odoc binary is available (the CI
# image may not ship one; all libraries are private, so the private-doc
# alias is the one that renders their interfaces and surfaces odoc
# warnings).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

# Trace integrity: an instrumented `ssd sta --trace` run must emit a
# Chrome trace whose per-track timestamps are monotone and whose span
# ids/parents form a forest (tools/trace_check.exe validates both), and
# the --stats-json snapshot must be parseable JSON.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
dune exec bin/ssd.exe -- sta c880s --jobs 4 \
  --trace "$TRACE_TMP/sta_trace.json" \
  --stats-json "$TRACE_TMP/sta_stats.json" >/dev/null
dune exec tools/trace_check.exe -- "$TRACE_TMP/sta_trace.json"
test -s "$TRACE_TMP/sta_stats.json"

# Downsized scale + corners + Monte-Carlo runs (the 100k/40k-gate
# experiments shrunk for CI — every bit-identity, footprint and speedup
# assertion still runs), consolidated into one invocation so the report
# lands in BENCH_9.json and is gated against the checked-in smoke
# baseline.  The baseline carries only machine-independent metrics
# (sizes, allocation footprints); the loose 400% gate still catches
# order-of-magnitude footprint regressions on any CI machine.
SSD_FAST=1 SSD_SCALE_GATES=5000 SSD_CORNERS=4000 SSD_MC=600 \
SSD_SERVE_REQS=8000 \
  dune exec bench/main.exe -- scale corners mc serve \
  --json BENCH_9.json \
  --baseline bench/BENCH_smoke_baseline.json --gate 400

# Serve smoke: a live `ssd serve --stdio` session fed the canned request
# script must reproduce the checked-in transcript byte for byte — this
# exercises the real transport (framing, batching reader, EOF handling)
# end to end, and the bit-stable float rendering the record/replay
# contract rests on.  A second pass records the session and replays it
# through a fresh server with --check.
SSD_FAST=1 dune exec bin/ssd.exe -- serve --stdio \
  < tools/serve_smoke.req > "$TRACE_TMP/serve_smoke.out"
diff tools/serve_smoke.golden "$TRACE_TMP/serve_smoke.out"
SSD_FAST=1 dune exec bin/ssd.exe -- serve --stdio \
  --record "$TRACE_TMP/serve_smoke.log" \
  < tools/serve_smoke.req > /dev/null
SSD_FAST=1 dune exec bin/ssd.exe -- serve \
  --replay "$TRACE_TMP/serve_smoke.log" --check

if command -v odoc >/dev/null 2>&1; then
  dune build @doc @doc-private
else
  echo "verify: odoc not installed; skipping dune build @doc" >&2
fi

echo "verify: ok"
